//! Deterministic fault injection for the simulated MPC runtime.
//!
//! FoundationDB-style deterministic simulation testing: a [`FaultPlan`]
//! is a seeded, serializable schedule of faults — per-round machine
//! slowdown (stragglers), message drop/duplication on the exchange
//! path, transient machine unavailability with bounded retry/backoff,
//! machine crashes that lose a shard mid-round (recovered from the
//! round checkpoint, see `DESIGN.md`), and capacity squeezes —
//! cluster-wide or per machine — that shrink `s` mid-run. The runtime
//! consults
//! the plan at fixed points of [`crate::cluster::Runtime::round`]; every
//! decision is a pure function of `(plan seed, round, attempt, machine,
//! message index)`, so a fixed plan reproduces the identical fault
//! sequence and the identical run outcome across repeated runs and
//! across thread counts.
//!
//! **Failure model.** Exchange faults (drop, duplication, machine
//! unavailability) are *detected* by the simulated exchange protocol —
//! real shuffles run sequence numbers and acknowledgements — and the
//! whole exchange is retried with bounded backoff, re-transmitting from
//! the machines' already-computed outputs. A successful attempt
//! delivers exactly the fault-free message sequence, so a run under any
//! retryable fault schedule either produces output bit-identical to the
//! fault-free run or fails with the typed
//! [`MpcError::RetriesExhausted`](crate::error::MpcError) — never a
//! silently wrong result. Capacity squeezes are *not* retryable: they
//! shrink the effective `s` from a given round onward, and loads that
//! no longer fit surface as the usual typed capacity errors
//! ([`MpcError::CapacityExceeded`](crate::error::MpcError)), mirroring
//! Theorem 1's "report failure" contract. Crashes lose a machine's
//! *state*, not just an exchange attempt: the runtime re-executes the
//! lost partition from its round-input checkpoint (deterministic
//! closures make the re-execution bit-identical), and a machine that
//! crashes through the whole per-round recovery budget surfaces as the
//! typed, retryable
//! [`MpcError::RecoveryExhausted`](crate::error::MpcError).
//!
//! Plans round-trip through a small hand-rolled JSON codec
//! ([`FaultPlan::to_json`] / [`FaultPlan::from_json`]; the workspace
//! builds without serde), which is what `treeemb-bench --bin chaos --
//! --faults plan.json` replays and what the shrinker
//! ([`shrink_plan`]) prints for a minimal reproducing schedule.

use crate::cluster::mix_seed;
use std::fmt;

/// Domain-separation tags for the per-fault-kind hash streams.
const TAG_DROP: u64 = 0xD809;
const TAG_DUP: u64 = 0xD7B1;
const TAG_UNAVAILABLE: u64 = 0x0FF1;
const TAG_STRAGGLE: u64 = 0x51C0;
const TAG_CRASH: u64 = 0xC4A5;

/// Seeded probabilistic fault rates, applied independently per decision
/// point through the plan's hash stream. All probabilities are clamped
/// to `[0, 1]`; `0` disables the class.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a message is dropped in transit (per message, per
    /// attempt).
    pub drop: f64,
    /// Probability a message is duplicated in transit (per message, per
    /// attempt).
    pub duplicate: f64,
    /// Probability a machine is unavailable for an exchange attempt
    /// (per machine, per attempt).
    pub unavailable: f64,
    /// Probability a machine straggles in a round (per machine, per
    /// round).
    pub straggle: f64,
    /// Injected delay when a rate-based straggle fires, nanoseconds.
    pub straggle_ns: u64,
    /// Probability a machine crashes and loses its shard during an
    /// execution of a round (per machine, per execution attempt; see
    /// [`FaultPlan::crashed`]).
    pub crash: f64,
}

impl FaultRates {
    /// True when every rate is zero (no probabilistic injection).
    pub fn is_zero(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.unavailable <= 0.0
            && self.straggle <= 0.0
            && self.crash <= 0.0
    }
}

/// One explicitly scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Machine `machine` sleeps `delay_ns` while computing round
    /// `round`.
    Straggle {
        /// Affected round (0-based, the runtime's round counter).
        round: usize,
        /// Straggling machine.
        machine: usize,
        /// Injected delay in nanoseconds.
        delay_ns: u64,
    },
    /// Message `msg_index` emitted by `src` is dropped in exchange
    /// attempt `attempt` of round `round`.
    Drop {
        /// Affected round.
        round: usize,
        /// Exchange attempt (0-based) within the round.
        attempt: u32,
        /// Source machine of the message.
        src: usize,
        /// Index of the message in the source's emission order.
        msg_index: usize,
    },
    /// Like [`FaultSpec::Drop`], but the message is duplicated.
    Duplicate {
        /// Affected round.
        round: usize,
        /// Exchange attempt within the round.
        attempt: u32,
        /// Source machine of the message.
        src: usize,
        /// Index of the message in the source's emission order.
        msg_index: usize,
    },
    /// Machine `machine` is unavailable for exchange attempt `attempt`
    /// of round `round`.
    Unavailable {
        /// Affected round.
        round: usize,
        /// Exchange attempt within the round.
        attempt: u32,
        /// Unavailable machine.
        machine: usize,
    },
    /// From round `from_round` onward the effective per-machine
    /// capacity shrinks to `capacity_words` (never grows; multiple
    /// squeezes take the minimum). Non-retryable. With `machine: Some`
    /// only that machine is squeezed (heterogeneous capacity); `None`
    /// squeezes the whole cluster.
    Squeeze {
        /// First affected round.
        from_round: usize,
        /// New effective capacity in words.
        capacity_words: usize,
        /// Affected machine; `None` = every machine.
        machine: Option<usize>,
    },
    /// Machine `machine` crashes and loses its shard during execution
    /// attempt `attempt` of round `round` (attempt 0 is the initial
    /// execution; attempt `k > 0` is the `k`-th re-execution from the
    /// round checkpoint). Recovered by checkpoint restore, bounded by
    /// [`FaultPlan::max_recoveries`].
    Crash {
        /// Affected round.
        round: usize,
        /// Execution attempt within the round (0 = initial run).
        attempt: u32,
        /// Crashing machine.
        machine: usize,
    },
}

/// What kind of fault an injected [`FaultEvent`] was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A machine slept during round compute.
    Straggle,
    /// A message was dropped in transit.
    Drop,
    /// A message was duplicated in transit.
    Duplicate,
    /// A machine was unavailable for an exchange attempt.
    Unavailable,
    /// The runtime backed off before retrying an exchange.
    Backoff,
    /// A capacity squeeze was in force for a round.
    Squeeze,
    /// A machine crashed and lost its shard during round compute.
    Crash,
    /// A crashed machine's shard was restored from the round checkpoint
    /// and re-executed (a consequence of a crash, not a cause).
    Recover,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Straggle => "straggle",
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Unavailable => "unavailable",
            FaultKind::Backoff => "backoff",
            FaultKind::Squeeze => "squeeze",
            FaultKind::Crash => "crash",
            FaultKind::Recover => "recover",
        };
        f.write_str(s)
    }
}

/// One fault the runtime actually injected, recorded in deterministic
/// order (rounds ascending; within a round: squeeze, straggles by
/// machine, then per attempt: unavailability by machine, message faults
/// by `(src, msg_index)`, backoff last).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Round the fault fired in.
    pub round: usize,
    /// Exchange attempt within the round (0 for straggle/squeeze).
    pub attempt: u32,
    /// What happened.
    pub kind: FaultKind,
    /// Affected machine (source machine for message faults).
    pub machine: usize,
    /// Message index for drop/duplicate faults. For squeeze events the
    /// field doubles as the scope marker: `usize::MAX` = cluster-wide,
    /// otherwise the squeezed machine. `usize::MAX` for all other kinds.
    pub msg_index: usize,
    /// Kind-specific value: delay (ns) for straggle/backoff, effective
    /// capacity (words) for squeeze, restored words for recover,
    /// 0 otherwise.
    pub value: u64,
}

/// A seeded, serializable fault schedule.
///
/// Attach to a runtime at construction with
/// [`RuntimeBuilder::fault_plan`](crate::config::RuntimeBuilder::fault_plan).
/// The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the probabilistic decision stream.
    pub seed: u64,
    /// Exchange retries per round beyond the first attempt; retryable
    /// faults that persist through `max_retries + 1` attempts surface
    /// as [`MpcError::RetriesExhausted`](crate::error::MpcError).
    pub max_retries: u32,
    /// Checkpoint restores a machine may consume per round; a machine
    /// that crashes on the initial execution *and* on `max_recoveries`
    /// re-executions surfaces as
    /// [`MpcError::RecoveryExhausted`](crate::error::MpcError).
    pub max_recoveries: u32,
    /// Base simulated backoff before retry `k` (recorded as
    /// `backoff_ns << k`, capped at 20 doublings; the simulation records
    /// rather than sleeps it).
    pub backoff_ns: u64,
    /// Probabilistic fault rates.
    pub rates: FaultRates,
    /// Explicitly scheduled faults.
    pub scheduled: Vec<FaultSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            max_retries: 3,
            max_recoveries: 3,
            backoff_ns: 1_000_000,
            rates: FaultRates::default(),
            scheduled: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan with the given decision seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Builder: sets the probabilistic rates.
    pub fn with_rates(mut self, rates: FaultRates) -> Self {
        self.rates = rates;
        self
    }

    /// Builder: sets the per-round exchange retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Builder: sets the per-round, per-machine checkpoint-restore
    /// budget for crash recovery.
    pub fn with_max_recoveries(mut self, max_recoveries: u32) -> Self {
        self.max_recoveries = max_recoveries;
        self
    }

    /// Builder: appends a scheduled fault.
    pub fn with_fault(mut self, spec: FaultSpec) -> Self {
        self.scheduled.push(spec);
        self
    }

    /// True when the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.rates.is_zero() && self.scheduled.is_empty()
    }

    /// True when the plan can crash a machine (rate-sampled or
    /// scheduled) — the condition under which
    /// [`CheckpointPolicy::Auto`](crate::config::CheckpointPolicy)
    /// snapshots round inputs.
    pub fn can_crash(&self) -> bool {
        self.rates.crash > 0.0
            || self
                .scheduled
                .iter()
                .any(|s| matches!(s, FaultSpec::Crash { .. }))
    }

    /// Derives the plan for pipeline-level retry attempt `attempt`:
    /// attempt 0 is the plan verbatim; later attempts re-seed the
    /// probabilistic stream (scheduled faults are kept, so purely
    /// scheduled plans fail deterministically on every attempt).
    pub fn for_attempt(&self, attempt: u32) -> FaultPlan {
        let mut plan = self.clone();
        if attempt > 0 {
            plan.seed = mix_seed(self.seed, 0xA77E_0000 | attempt as u64);
        }
        plan
    }

    /// Builds an explicit (rate-free) plan that replays exactly the
    /// faults in `events` — the starting point for shrinking a failing
    /// seeded run down to a minimal reproducing schedule.
    pub fn from_events(events: &[FaultEvent], max_retries: u32, backoff_ns: u64) -> FaultPlan {
        let mut scheduled = Vec::new();
        for e in events {
            let spec = match e.kind {
                FaultKind::Straggle => FaultSpec::Straggle {
                    round: e.round,
                    machine: e.machine,
                    delay_ns: e.value,
                },
                FaultKind::Drop => FaultSpec::Drop {
                    round: e.round,
                    attempt: e.attempt,
                    src: e.machine,
                    msg_index: e.msg_index,
                },
                FaultKind::Duplicate => FaultSpec::Duplicate {
                    round: e.round,
                    attempt: e.attempt,
                    src: e.machine,
                    msg_index: e.msg_index,
                },
                FaultKind::Unavailable => FaultSpec::Unavailable {
                    round: e.round,
                    attempt: e.attempt,
                    machine: e.machine,
                },
                FaultKind::Squeeze => FaultSpec::Squeeze {
                    from_round: e.round,
                    capacity_words: e.value as usize,
                    // msg_index doubles as the scope marker: MAX =
                    // cluster-wide, otherwise the squeezed machine.
                    machine: (e.msg_index != usize::MAX).then_some(e.machine),
                },
                FaultKind::Crash => FaultSpec::Crash {
                    round: e.round,
                    attempt: e.attempt,
                    machine: e.machine,
                },
                // Backoffs and recoveries are consequences, not causes.
                FaultKind::Backoff | FaultKind::Recover => continue,
            };
            if !scheduled.contains(&spec) {
                scheduled.push(spec);
            }
        }
        FaultPlan {
            seed: 0,
            max_retries,
            backoff_ns,
            rates: FaultRates::default(),
            scheduled,
            ..FaultPlan::default()
        }
    }

    // ---- decision points (pure functions of the plan) ----

    /// One draw from the decision stream; uniform in `[0, 1)`.
    fn draw(&self, tag: u64, round: usize, attempt: u32, a: u64, b: u64) -> f64 {
        let h = mix_seed(
            mix_seed(
                mix_seed(self.seed, tag),
                mix_seed(round as u64, attempt as u64),
            ),
            mix_seed(a, b),
        );
        // 53 high bits -> uniform double in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn rate_hit(&self, p: f64, tag: u64, round: usize, attempt: u32, a: u64, b: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        p >= 1.0 || self.draw(tag, round, attempt, a, b) < p
    }

    /// Delay machine `machine` should sleep while computing `round`, in
    /// nanoseconds (0 = no straggle).
    pub fn straggle_ns(&self, round: usize, machine: usize) -> u64 {
        let mut delay = 0u64;
        for s in &self.scheduled {
            if let FaultSpec::Straggle {
                round: r,
                machine: m,
                delay_ns,
            } = s
            {
                if *r == round && *m == machine {
                    delay = delay.max(*delay_ns);
                }
            }
        }
        if self.rate_hit(
            self.rates.straggle,
            TAG_STRAGGLE,
            round,
            0,
            machine as u64,
            0,
        ) {
            delay = delay.max(self.rates.straggle_ns);
        }
        delay
    }

    /// Whether `machine` is unavailable for exchange attempt `attempt`
    /// of `round`.
    pub fn unavailable(&self, round: usize, attempt: u32, machine: usize) -> bool {
        self.scheduled.iter().any(|s| {
            matches!(s, FaultSpec::Unavailable { round: r, attempt: a, machine: m }
                     if *r == round && *a == attempt && *m == machine)
        }) || self.rate_hit(
            self.rates.unavailable,
            TAG_UNAVAILABLE,
            round,
            attempt,
            machine as u64,
            0,
        )
    }

    /// Fault, if any, hitting message `msg_index` from `src` in
    /// exchange attempt `attempt` of `round`. Drop shadows duplicate.
    pub fn msg_fault(
        &self,
        round: usize,
        attempt: u32,
        src: usize,
        msg_index: usize,
    ) -> Option<FaultKind> {
        for s in &self.scheduled {
            match s {
                FaultSpec::Drop {
                    round: r,
                    attempt: a,
                    src: sm,
                    msg_index: i,
                } if *r == round && *a == attempt && *sm == src && *i == msg_index => {
                    return Some(FaultKind::Drop)
                }
                FaultSpec::Duplicate {
                    round: r,
                    attempt: a,
                    src: sm,
                    msg_index: i,
                } if *r == round && *a == attempt && *sm == src && *i == msg_index => {
                    return Some(FaultKind::Duplicate)
                }
                _ => {}
            }
        }
        if self.rate_hit(
            self.rates.drop,
            TAG_DROP,
            round,
            attempt,
            src as u64,
            msg_index as u64,
        ) {
            return Some(FaultKind::Drop);
        }
        if self.rate_hit(
            self.rates.duplicate,
            TAG_DUP,
            round,
            attempt,
            src as u64,
            msg_index as u64,
        ) {
            return Some(FaultKind::Duplicate);
        }
        None
    }

    /// Cluster-wide capacity cap in force at `round`, if any
    /// machine-unscoped squeeze applies (the minimum over applicable
    /// squeezes). Machine-scoped squeezes are consulted through
    /// [`FaultPlan::squeeze_for`].
    pub fn squeeze_at(&self, round: usize) -> Option<usize> {
        self.scheduled
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Squeeze {
                    from_round,
                    capacity_words,
                    machine: None,
                } if *from_round <= round => Some(*capacity_words),
                _ => None,
            })
            .min()
    }

    /// Capacity cap in force for `machine` at `round`, combining
    /// cluster-wide and machine-scoped squeezes (the minimum over all
    /// applicable squeezes).
    pub fn squeeze_for(&self, round: usize, machine: usize) -> Option<usize> {
        self.scheduled
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Squeeze {
                    from_round,
                    capacity_words,
                    machine: m,
                } if *from_round <= round && m.is_none_or(|m| m == machine) => {
                    Some(*capacity_words)
                }
                _ => None,
            })
            .min()
    }

    /// Tightest capacity cap in force for *any* machine at `round` —
    /// the cluster-minimum effective capacity under this plan.
    pub(crate) fn squeeze_min(&self, round: usize) -> Option<usize> {
        self.scheduled
            .iter()
            .filter_map(|s| match s {
                FaultSpec::Squeeze {
                    from_round,
                    capacity_words,
                    ..
                } if *from_round <= round => Some(*capacity_words),
                _ => None,
            })
            .min()
    }

    /// Whether `machine` crashes (loses its shard) during execution
    /// attempt `attempt` of `round`. Attempt 0 is the initial execution;
    /// attempt `k > 0` is the `k`-th re-execution from the checkpoint.
    pub fn crashed(&self, round: usize, attempt: u32, machine: usize) -> bool {
        self.scheduled.iter().any(|s| {
            matches!(s, FaultSpec::Crash { round: r, attempt: a, machine: m }
                     if *r == round && *a == attempt && *m == machine)
        }) || self.rate_hit(
            self.rates.crash,
            TAG_CRASH,
            round,
            attempt,
            machine as u64,
            0,
        )
    }

    /// Simulated backoff before retry attempt `next_attempt`
    /// (exponential, capped at 20 doublings).
    pub fn backoff_for(&self, next_attempt: u32) -> u64 {
        self.backoff_ns
            .saturating_mul(1u64 << next_attempt.saturating_sub(1).min(20))
    }

    // ---- JSON codec ----

    /// Serializes the plan as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + 96 * self.scheduled.len());
        let _ = write!(
            out,
            "{{\n  \"seed\": {},\n  \"max_retries\": {},\n  \"max_recoveries\": {},\n  \"backoff_ns\": {},\n  \"rates\": {{\"drop\": {}, \"duplicate\": {}, \"unavailable\": {}, \"straggle\": {}, \"straggle_ns\": {}, \"crash\": {}}},\n  \"scheduled\": [",
            self.seed,
            self.max_retries,
            self.max_recoveries,
            self.backoff_ns,
            fmt_f64(self.rates.drop),
            fmt_f64(self.rates.duplicate),
            fmt_f64(self.rates.unavailable),
            fmt_f64(self.rates.straggle),
            self.rates.straggle_ns,
            fmt_f64(self.rates.crash),
        );
        for (i, s) in self.scheduled.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            match s {
                FaultSpec::Straggle {
                    round,
                    machine,
                    delay_ns,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"straggle\", \"round\": {round}, \"machine\": {machine}, \"delay_ns\": {delay_ns}}}"
                    );
                }
                FaultSpec::Drop {
                    round,
                    attempt,
                    src,
                    msg_index,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"drop\", \"round\": {round}, \"attempt\": {attempt}, \"src\": {src}, \"msg_index\": {msg_index}}}"
                    );
                }
                FaultSpec::Duplicate {
                    round,
                    attempt,
                    src,
                    msg_index,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"duplicate\", \"round\": {round}, \"attempt\": {attempt}, \"src\": {src}, \"msg_index\": {msg_index}}}"
                    );
                }
                FaultSpec::Unavailable {
                    round,
                    attempt,
                    machine,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"unavailable\", \"round\": {round}, \"attempt\": {attempt}, \"machine\": {machine}}}"
                    );
                }
                FaultSpec::Squeeze {
                    from_round,
                    capacity_words,
                    machine,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"squeeze\", \"from_round\": {from_round}, \"capacity_words\": {capacity_words}"
                    );
                    if let Some(m) = machine {
                        let _ = write!(out, ", \"machine\": {m}");
                    }
                    out.push('}');
                }
                FaultSpec::Crash {
                    round,
                    attempt,
                    machine,
                } => {
                    let _ = write!(
                        out,
                        "{{\"kind\": \"crash\", \"round\": {round}, \"attempt\": {attempt}, \"machine\": {machine}}}"
                    );
                }
            }
        }
        out.push_str(if self.scheduled.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }

    /// Parses a plan from the JSON [`Self::to_json`] emits. Unknown
    /// keys are ignored; missing keys take their defaults.
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj().ok_or("fault plan must be a JSON object")?;
        let mut plan = FaultPlan::new(0);
        for (k, v) in obj {
            match k.as_str() {
                "seed" => plan.seed = v.as_u64().ok_or("seed must be an integer")?,
                "max_retries" => {
                    plan.max_retries = v.as_u64().ok_or("max_retries must be an integer")? as u32
                }
                "max_recoveries" => {
                    plan.max_recoveries =
                        v.as_u64().ok_or("max_recoveries must be an integer")? as u32
                }
                "backoff_ns" => {
                    plan.backoff_ns = v.as_u64().ok_or("backoff_ns must be an integer")?
                }
                "rates" => {
                    let r = v.as_obj().ok_or("rates must be an object")?;
                    for (rk, rv) in r {
                        let f = rv.as_f64().ok_or("rate must be a number")?;
                        match rk.as_str() {
                            "drop" => plan.rates.drop = f,
                            "duplicate" => plan.rates.duplicate = f,
                            "unavailable" => plan.rates.unavailable = f,
                            "straggle" => plan.rates.straggle = f,
                            "straggle_ns" => plan.rates.straggle_ns = f as u64,
                            "crash" => plan.rates.crash = f,
                            _ => {}
                        }
                    }
                }
                "scheduled" => {
                    let arr = v.as_arr().ok_or("scheduled must be an array")?;
                    for item in arr {
                        plan.scheduled.push(parse_spec(item)?);
                    }
                }
                _ => {}
            }
        }
        Ok(plan)
    }
}

fn fmt_f64(v: f64) -> String {
    // Shortest representation that round-trips (JSON needs a fraction
    // marker only for non-integers; integers print exactly).
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

fn parse_spec(v: &json::Value) -> Result<FaultSpec, String> {
    let obj = v.as_obj().ok_or("scheduled fault must be an object")?;
    let get = |key: &str| -> Option<u64> {
        obj.iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
    };
    let kind = obj
        .iter()
        .find(|(k, _)| k == "kind")
        .and_then(|(_, v)| v.as_str())
        .ok_or("scheduled fault missing kind")?;
    let field = |key: &str| get(key).ok_or_else(|| format!("{kind} fault missing {key}"));
    Ok(match kind {
        "straggle" => FaultSpec::Straggle {
            round: field("round")? as usize,
            machine: field("machine")? as usize,
            delay_ns: field("delay_ns")?,
        },
        "drop" => FaultSpec::Drop {
            round: field("round")? as usize,
            attempt: field("attempt")? as u32,
            src: field("src")? as usize,
            msg_index: field("msg_index")? as usize,
        },
        "duplicate" => FaultSpec::Duplicate {
            round: field("round")? as usize,
            attempt: field("attempt")? as u32,
            src: field("src")? as usize,
            msg_index: field("msg_index")? as usize,
        },
        "unavailable" => FaultSpec::Unavailable {
            round: field("round")? as usize,
            attempt: field("attempt")? as u32,
            machine: field("machine")? as usize,
        },
        "squeeze" => FaultSpec::Squeeze {
            from_round: field("from_round")? as usize,
            capacity_words: field("capacity_words")? as usize,
            // Optional for backward compatibility with plans emitted
            // before machine-scoped squeezes existed.
            machine: get("machine").map(|m| m as usize),
        },
        "crash" => FaultSpec::Crash {
            round: field("round")? as usize,
            attempt: field("attempt")? as u32,
            machine: field("machine")? as usize,
        },
        other => return Err(format!("unknown fault kind {other:?}")),
    })
}

/// Greedily minimizes an explicit plan while `still_fails` keeps
/// returning true: repeatedly tries dropping each scheduled fault (and
/// zeroing each probabilistic rate), keeping any removal that preserves
/// the failure, until a fixpoint. The result is 1-minimal: removing any
/// single remaining element makes the failure disappear.
pub fn shrink_plan(plan: &FaultPlan, still_fails: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    let mut current = plan.clone();
    // Rates first: a failure that reproduces from the scheduled list
    // alone is far easier to read.
    if !current.rates.is_zero() {
        let mut zeroed = current.clone();
        zeroed.rates = FaultRates::default();
        if still_fails(&zeroed) {
            current = zeroed;
        }
    }
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.scheduled.len() {
            let mut candidate = current.clone();
            candidate.scheduled.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                removed_any = true;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }
    current
}

/// Minimal recursive-descent JSON parser for the plan schema (objects,
/// arrays, strings, integers, floats, booleans, null). The workspace
/// builds without serde; this is the read half of the hand-rolled codec.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number without fraction/exponent, within `i128`.
        Int(i128),
        /// Any other number.
        Float(f64),
        /// A string literal.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a `u64`, if it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) if *i >= 0 && *i <= u64::MAX as i128 => Some(*i as u64),
                _ => None,
            }
        }

        /// The value as an `f64`, if it is any number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        }

        /// Looks up `key` in an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_obj()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => {
                *pos += 1;
                let mut obj = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(obj));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match parse_value(b, pos)? {
                        Value::Str(s) => s,
                        _ => return Err(format!("object key must be a string at byte {}", *pos)),
                    };
                    expect(b, pos, b':')?;
                    let val = parse_value(b, pos)?;
                    obj.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(obj));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut arr = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(arr));
                }
                loop {
                    arr.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(arr));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => {
                *pos += 1;
                let mut s = String::new();
                loop {
                    match b.get(*pos) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            *pos += 1;
                            return Ok(Value::Str(s));
                        }
                        Some(b'\\') => {
                            *pos += 1;
                            match b.get(*pos) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'/') => s.push('/'),
                                Some(b'n') => s.push('\n'),
                                Some(b'r') => s.push('\r'),
                                Some(b't') => s.push('\t'),
                                Some(b'u') => {
                                    let hex =
                                        b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                        16,
                                    )
                                    .map_err(|_| "bad \\u escape")?;
                                    s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                    *pos += 4;
                                }
                                other => return Err(format!("bad escape {other:?}")),
                            }
                            *pos += 1;
                        }
                        Some(&c) => {
                            // Multi-byte UTF-8 sequences pass through.
                            let start = *pos;
                            let len = if c < 0x80 {
                                1
                            } else if c < 0xE0 {
                                2
                            } else if c < 0xF0 {
                                3
                            } else {
                                4
                            };
                            let chunk = b
                                .get(start..start + len)
                                .ok_or("truncated UTF-8 sequence")?;
                            s.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                            *pos += len;
                        }
                    }
                }
            }
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                let mut is_float = false;
                while *pos < b.len() {
                    match b[*pos] {
                        b'0'..=b'9' | b'-' | b'+' => *pos += 1,
                        b'.' | b'e' | b'E' => {
                            is_float = true;
                            *pos += 1;
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
                if text.is_empty() {
                    return Err(format!("unexpected character at byte {start}"));
                }
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|e| format!("bad number {text:?}: {e}"))
                } else {
                    text.parse::<i128>()
                        .map(Value::Int)
                        .map_err(|e| format!("bad number {text:?}: {e}"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::new(7);
        assert!(p.is_empty());
        for round in 0..20 {
            for machine in 0..8 {
                assert_eq!(p.straggle_ns(round, machine), 0);
                assert!(!p.unavailable(round, 0, machine));
                assert_eq!(p.msg_fault(round, 0, machine, 0), None);
            }
            assert_eq!(p.squeeze_at(round), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_functions_of_inputs() {
        let p = FaultPlan::new(42).with_rates(FaultRates {
            drop: 0.5,
            duplicate: 0.3,
            unavailable: 0.2,
            straggle: 0.4,
            straggle_ns: 1_000,
            crash: 0.3,
        });
        for round in 0..10 {
            for attempt in 0..3 {
                for src in 0..6 {
                    for idx in 0..6 {
                        assert_eq!(
                            p.msg_fault(round, attempt, src, idx),
                            p.msg_fault(round, attempt, src, idx)
                        );
                    }
                    assert_eq!(
                        p.unavailable(round, attempt, src),
                        p.unavailable(round, attempt, src)
                    );
                    assert_eq!(
                        p.crashed(round, attempt, src),
                        p.crashed(round, attempt, src)
                    );
                }
            }
        }
    }

    #[test]
    fn rates_hit_at_roughly_their_probability() {
        let p = FaultPlan::new(3).with_rates(FaultRates {
            drop: 0.25,
            ..FaultRates::default()
        });
        let n = 4000;
        let hits = (0..n)
            .filter(|&i| p.msg_fault(0, 0, 0, i).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn extreme_rates_are_exact() {
        let always = FaultPlan::new(1).with_rates(FaultRates {
            drop: 1.0,
            ..FaultRates::default()
        });
        let never = FaultPlan::new(1);
        for i in 0..100 {
            assert_eq!(always.msg_fault(0, 0, 0, i), Some(FaultKind::Drop));
            assert_eq!(never.msg_fault(0, 0, 0, i), None);
        }
    }

    #[test]
    fn retries_decorrelate_attempts() {
        let p = FaultPlan::new(11).with_rates(FaultRates {
            drop: 0.5,
            ..FaultRates::default()
        });
        // Some message faulted at attempt 0 must be clean at a later
        // attempt (the whole point of retrying).
        let recovered =
            (0..64).any(|i| p.msg_fault(0, 0, 0, i).is_some() && p.msg_fault(0, 1, 0, i).is_none());
        assert!(recovered);
    }

    #[test]
    fn scheduled_faults_fire_exactly_where_scheduled() {
        let p = FaultPlan::new(0)
            .with_fault(FaultSpec::Drop {
                round: 2,
                attempt: 0,
                src: 1,
                msg_index: 3,
            })
            .with_fault(FaultSpec::Unavailable {
                round: 1,
                attempt: 1,
                machine: 0,
            })
            .with_fault(FaultSpec::Straggle {
                round: 0,
                machine: 2,
                delay_ns: 500,
            });
        assert_eq!(p.msg_fault(2, 0, 1, 3), Some(FaultKind::Drop));
        assert_eq!(p.msg_fault(2, 1, 1, 3), None, "retry attempt is clean");
        assert_eq!(p.msg_fault(2, 0, 1, 2), None);
        assert!(p.unavailable(1, 1, 0));
        assert!(!p.unavailable(1, 0, 0));
        assert_eq!(p.straggle_ns(0, 2), 500);
        assert_eq!(p.straggle_ns(0, 1), 0);
    }

    #[test]
    fn squeeze_takes_effect_from_round_and_minimizes() {
        let p = FaultPlan::new(0)
            .with_fault(FaultSpec::Squeeze {
                from_round: 3,
                capacity_words: 100,
                machine: None,
            })
            .with_fault(FaultSpec::Squeeze {
                from_round: 5,
                capacity_words: 40,
                machine: None,
            });
        assert_eq!(p.squeeze_at(2), None);
        assert_eq!(p.squeeze_at(3), Some(100));
        assert_eq!(p.squeeze_at(5), Some(40));
        assert_eq!(p.squeeze_at(100), Some(40));
    }

    #[test]
    fn machine_scoped_squeeze_hits_only_its_machine() {
        let p = FaultPlan::new(0)
            .with_fault(FaultSpec::Squeeze {
                from_round: 1,
                capacity_words: 50,
                machine: Some(2),
            })
            .with_fault(FaultSpec::Squeeze {
                from_round: 4,
                capacity_words: 80,
                machine: None,
            });
        // Machine-scoped squeezes are invisible to the cluster-wide view.
        assert_eq!(p.squeeze_at(1), None);
        assert_eq!(p.squeeze_at(4), Some(80));
        // Per-machine view combines both scopes.
        assert_eq!(p.squeeze_for(0, 2), None);
        assert_eq!(p.squeeze_for(1, 2), Some(50));
        assert_eq!(p.squeeze_for(1, 0), None);
        assert_eq!(p.squeeze_for(4, 0), Some(80));
        assert_eq!(p.squeeze_for(4, 2), Some(50));
        // The cluster minimum sees every scope.
        assert_eq!(p.squeeze_min(1), Some(50));
        assert_eq!(p.squeeze_min(0), None);
    }

    #[test]
    fn scheduled_crashes_fire_exactly_where_scheduled() {
        let p = FaultPlan::new(0).with_fault(FaultSpec::Crash {
            round: 2,
            attempt: 0,
            machine: 1,
        });
        assert!(p.can_crash());
        assert!(p.crashed(2, 0, 1));
        assert!(!p.crashed(2, 1, 1), "re-execution from checkpoint is clean");
        assert!(!p.crashed(2, 0, 0));
        assert!(!p.crashed(1, 0, 1));
        assert!(!FaultPlan::new(0).can_crash());
        assert!(FaultPlan::new(0)
            .with_rates(FaultRates {
                crash: 0.1,
                ..FaultRates::default()
            })
            .can_crash());
    }

    #[test]
    fn crash_rate_hits_at_roughly_its_probability_and_decorrelates_attempts() {
        let p = FaultPlan::new(13).with_rates(FaultRates {
            crash: 0.25,
            ..FaultRates::default()
        });
        let n = 4000;
        let hits = (0..n).filter(|&m| p.crashed(0, 0, m)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "empirical crash rate {rate}");
        // A machine crashed at attempt 0 must be able to survive a
        // re-execution (otherwise recovery could never succeed).
        let recovered = (0..64).any(|m| p.crashed(0, 0, m) && !p.crashed(0, 1, m));
        assert!(recovered);
    }

    #[test]
    fn backoff_is_exponential_and_saturates() {
        let p = FaultPlan {
            backoff_ns: 1000,
            ..FaultPlan::new(0)
        };
        assert_eq!(p.backoff_for(1), 1000);
        assert_eq!(p.backoff_for(2), 2000);
        assert_eq!(p.backoff_for(3), 4000);
        assert!(p.backoff_for(200) >= p.backoff_for(21));
    }

    #[test]
    fn json_round_trips() {
        let plan = FaultPlan {
            seed: u64::MAX - 3,
            max_retries: 5,
            max_recoveries: 2,
            backoff_ns: 123,
            rates: FaultRates {
                drop: 0.125,
                duplicate: 0.0,
                unavailable: 1.0,
                straggle: 0.5,
                straggle_ns: 777,
                crash: 0.0625,
            },
            scheduled: vec![
                FaultSpec::Straggle {
                    round: 1,
                    machine: 2,
                    delay_ns: 10,
                },
                FaultSpec::Drop {
                    round: 0,
                    attempt: 0,
                    src: 3,
                    msg_index: 9,
                },
                FaultSpec::Duplicate {
                    round: 2,
                    attempt: 1,
                    src: 0,
                    msg_index: 0,
                },
                FaultSpec::Unavailable {
                    round: 4,
                    attempt: 0,
                    machine: 7,
                },
                FaultSpec::Squeeze {
                    from_round: 3,
                    capacity_words: 64,
                    machine: None,
                },
                FaultSpec::Squeeze {
                    from_round: 2,
                    capacity_words: 48,
                    machine: Some(5),
                },
                FaultSpec::Crash {
                    round: 1,
                    attempt: 1,
                    machine: 3,
                },
            ],
        };
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn machine_less_squeeze_json_still_parses() {
        // Plans serialized before machine-scoped squeezes existed carry
        // no "machine" key; they must keep parsing as cluster-wide.
        let text = r#"{"scheduled": [{"kind": "squeeze", "from_round": 2, "capacity_words": 32}]}"#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(
            plan.scheduled,
            vec![FaultSpec::Squeeze {
                from_round: 2,
                capacity_words: 32,
                machine: None,
            }]
        );
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::new(9);
        assert_eq!(plan, FaultPlan::from_json(&plan.to_json()).unwrap());
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(FaultPlan::from_json("").is_err());
        assert!(FaultPlan::from_json("[]").is_err());
        assert!(FaultPlan::from_json("{\"seed\": }").is_err());
        assert!(
            FaultPlan::from_json("{\"scheduled\": [{\"kind\": \"warp\", \"round\": 0}]}").is_err()
        );
        assert!(FaultPlan::from_json("{\"scheduled\": [{\"kind\": \"drop\"}]}").is_err());
    }

    #[test]
    fn from_events_reconstructs_specs_and_skips_backoffs() {
        let events = [
            FaultEvent {
                round: 1,
                attempt: 0,
                kind: FaultKind::Drop,
                machine: 2,
                msg_index: 5,
                value: 0,
            },
            FaultEvent {
                round: 1,
                attempt: 0,
                kind: FaultKind::Backoff,
                machine: 0,
                msg_index: usize::MAX,
                value: 1000,
            },
            FaultEvent {
                round: 2,
                attempt: 0,
                kind: FaultKind::Squeeze,
                machine: 0,
                msg_index: usize::MAX,
                value: 99,
            },
            FaultEvent {
                round: 2,
                attempt: 0,
                kind: FaultKind::Squeeze,
                machine: 0,
                msg_index: usize::MAX,
                value: 99,
            },
            FaultEvent {
                round: 3,
                attempt: 0,
                kind: FaultKind::Squeeze,
                machine: 4,
                msg_index: 4,
                value: 17,
            },
            FaultEvent {
                round: 4,
                attempt: 0,
                kind: FaultKind::Crash,
                machine: 1,
                msg_index: usize::MAX,
                value: 0,
            },
            FaultEvent {
                round: 4,
                attempt: 1,
                kind: FaultKind::Recover,
                machine: 1,
                msg_index: usize::MAX,
                value: 64,
            },
        ];
        let plan = FaultPlan::from_events(&events, 2, 10);
        assert_eq!(
            plan.scheduled,
            vec![
                FaultSpec::Drop {
                    round: 1,
                    attempt: 0,
                    src: 2,
                    msg_index: 5
                },
                FaultSpec::Squeeze {
                    from_round: 2,
                    capacity_words: 99,
                    machine: None,
                },
                FaultSpec::Squeeze {
                    from_round: 3,
                    capacity_words: 17,
                    machine: Some(4),
                },
                FaultSpec::Crash {
                    round: 4,
                    attempt: 0,
                    machine: 1,
                },
            ]
        );
        assert!(plan.rates.is_zero());
    }

    #[test]
    fn shrink_finds_the_single_culprit() {
        // Failure reproduces iff the plan contains the round-3 drop.
        let culprit = FaultSpec::Drop {
            round: 3,
            attempt: 0,
            src: 1,
            msg_index: 0,
        };
        let mut plan = FaultPlan::new(5).with_rates(FaultRates {
            straggle: 0.2,
            straggle_ns: 10,
            ..FaultRates::default()
        });
        for r in 0..6 {
            plan.scheduled.push(FaultSpec::Straggle {
                round: r,
                machine: 0,
                delay_ns: 1,
            });
        }
        plan.scheduled.insert(3, culprit);
        let shrunk = shrink_plan(&plan, |p| p.scheduled.contains(&culprit));
        assert_eq!(shrunk.scheduled, vec![culprit]);
        assert!(shrunk.rates.is_zero());
    }

    #[test]
    fn shrink_isolates_a_crash_spec_among_noise() {
        // Failure reproduces iff the plan still schedules the round-2
        // crash on machine 1 — the crash-spec analogue of the drop case.
        let culprit = FaultSpec::Crash {
            round: 2,
            attempt: 0,
            machine: 1,
        };
        let mut plan = FaultPlan::new(9).with_rates(FaultRates {
            crash: 0.05,
            ..FaultRates::default()
        });
        for r in 0..5 {
            plan.scheduled.push(FaultSpec::Crash {
                round: r,
                attempt: 0,
                machine: 0,
            });
            plan.scheduled.push(FaultSpec::Squeeze {
                from_round: r + 10,
                capacity_words: 1 << 12,
                machine: Some(r),
            });
        }
        plan.scheduled.insert(4, culprit);
        let shrunk = shrink_plan(&plan, |p| p.scheduled.contains(&culprit));
        assert_eq!(shrunk.scheduled, vec![culprit]);
        assert!(shrunk.rates.is_zero(), "crash rate must be shrunk away");
    }

    #[test]
    fn for_attempt_zero_is_identity_and_later_reseeds() {
        let plan = FaultPlan::new(77).with_fault(FaultSpec::Unavailable {
            round: 0,
            attempt: 0,
            machine: 1,
        });
        assert_eq!(plan.for_attempt(0), plan);
        let a1 = plan.for_attempt(1);
        assert_ne!(a1.seed, plan.seed);
        assert_eq!(a1.scheduled, plan.scheduled);
        assert_eq!(plan.for_attempt(1), plan.for_attempt(1));
        assert_ne!(plan.for_attempt(1).seed, plan.for_attempt(2).seed);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json::parse(r#"{"a": [1, -2.5, "x\n\"y\"", true, null], "b": {"c": 3}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[3], json::Value::Bool(true));
        assert_eq!(arr[4], json::Value::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_u64(), Some(3));
        assert!(json::parse("{\"a\": 1,}").is_err());
        assert!(json::parse("{} trailing").is_err());
    }
}
