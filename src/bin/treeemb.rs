//! `treeemb` — command-line front end.
//!
//! ```text
//! treeemb gen   --n 200 --d 8 --delta 1024 --kind uniform --out points.csv
//! treeemb embed --input points.csv --r 4 --seed 7 --out tree.json [--dot tree.dot]
//! treeemb mst   --input points.csv [--seed 7] [--exact]
//! treeemb emd   --input points.csv --split 100 [--seed 7] [--trees 5]
//! treeemb kmedian --input points.csv --k 3 [--seed 7]
//! ```
//!
//! CSV format: one point per line, comma-separated coordinates; `#`
//! comments allowed. Trees are saved as JSON edge-list documents
//! (`treeemb::hst::persist`).

use std::collections::HashMap;
use std::process::ExitCode;
use treeemb::apps::emd::{exact_emd, tree_emd};
use treeemb::apps::exact::prim;
use treeemb::apps::kmedian::{kmedian_cost_euclid, tree_kmedian};
use treeemb::apps::mst::tree_mst;
use treeemb::io::{points_from_csv, points_to_csv};
use treeemb::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `treeemb help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let flags = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "embed" => cmd_embed(&flags),
        "mst" => cmd_mst(&flags),
        "emd" => cmd_emd(&flags),
        "kmedian" => cmd_kmedian(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

const HELP: &str = "treeemb — tree embeddings for high-dimensional data (SPAA'23)

subcommands:
  gen      --n N --d D [--delta 1024] [--kind uniform|clusters|line] [--seed S] --out FILE
  embed    --input FILE [--r R] [--seed S] [--out tree.json] [--dot tree.dot]
  mst      --input FILE [--r R] [--seed S] [--exact]
  emd      --input FILE --split K [--r R] [--seed S] [--trees T] [--exact]
  kmedian  --input FILE --k K [--r R] [--seed S] [--trees T]
";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got {a:?}"));
        };
        match name {
            // Boolean flags.
            "exact" => {
                flags.insert(name.to_string(), "true".into());
            }
            _ => {
                let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), v.clone());
            }
        }
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, String> {
    match flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for --{name}: {v:?}")),
    }
}

fn req<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<T, String> {
    get(flags, name)?.ok_or_else(|| format!("missing required --{name}"))
}

fn load_points(flags: &Flags) -> Result<PointSet, String> {
    let path: String = req(flags, "input")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    points_from_csv(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn embed_points(
    ps: &PointSet,
    flags: &Flags,
) -> Result<(SeqEmbedder, treeemb::core::seq::Embedding, u64), String> {
    let r: usize =
        get(flags, "r")?.unwrap_or_else(|| treeemb::core::params::pipeline_r(ps.len(), ps.dim()));
    let seed: u64 = get(flags, "seed")?.unwrap_or(42);
    let params = HybridParams::for_dataset(ps, r).map_err(|e| e.to_string())?;
    let embedder = SeqEmbedder::new(params);
    let emb = embedder.embed(ps, seed).map_err(|e| e.to_string())?;
    Ok((embedder, emb, seed))
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let n: usize = req(flags, "n")?;
    let d: usize = req(flags, "d")?;
    let delta: u64 = get(flags, "delta")?.unwrap_or(1024);
    let seed: u64 = get(flags, "seed")?.unwrap_or(42);
    let kind: String = get(flags, "kind")?.unwrap_or_else(|| "uniform".into());
    let out: String = req(flags, "out")?;
    let ps = match kind.as_str() {
        "uniform" => generators::uniform_cube(n, d, delta, seed),
        "clusters" => generators::gaussian_clusters(n, d, (n / 20).max(2), 3.0, delta, seed),
        "line" => generators::noisy_line(n, d, delta, 1.0, seed),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    std::fs::write(&out, points_to_csv(&ps)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {n} x {d} points to {out}");
    Ok(())
}

fn cmd_embed(flags: &Flags) -> Result<(), String> {
    let ps = load_points(flags)?;
    let (_, emb, seed) = embed_points(&ps, flags)?;
    println!(
        "embedded n={} d={} (seed {seed}): {} nodes, height {}",
        ps.len(),
        ps.dim(),
        emb.tree.num_nodes(),
        emb.tree.height()
    );
    if let Some(out) = flags.get("out") {
        std::fs::write(out, emb.tree.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("tree document -> {out}");
    }
    if let Some(dot) = flags.get("dot") {
        std::fs::write(dot, emb.tree.to_dot()).map_err(|e| format!("writing {dot}: {e}"))?;
        println!("DOT rendering -> {dot}");
    }
    Ok(())
}

fn cmd_mst(flags: &Flags) -> Result<(), String> {
    let ps = load_points(flags)?;
    let (_, emb, _) = embed_points(&ps, flags)?;
    let st = tree_mst(&emb, &ps);
    println!(
        "tree-guided MST: {} edges, cost {:.3}",
        st.edges.len(),
        st.cost
    );
    if flags.contains_key("exact") {
        let exact = prim::mst(&ps);
        println!(
            "exact MST (Prim): cost {:.3}; approximation ratio {:.4}",
            exact.cost,
            st.cost / exact.cost
        );
    }
    Ok(())
}

fn cmd_emd(flags: &Flags) -> Result<(), String> {
    let ps = load_points(flags)?;
    let split: usize = req(flags, "split")?;
    if split == 0 || 2 * split > ps.len() {
        return Err(format!(
            "--split must satisfy 0 < split <= n/2 (n = {})",
            ps.len()
        ));
    }
    let a: Vec<usize> = (0..split).collect();
    let b: Vec<usize> = (split..2 * split).collect();
    let trees: u64 = get(flags, "trees")?.unwrap_or(5);
    let seed: u64 = get(flags, "seed")?.unwrap_or(42);
    let r: usize =
        get(flags, "r")?.unwrap_or_else(|| treeemb::core::params::pipeline_r(ps.len(), ps.dim()));
    let params = HybridParams::for_dataset(&ps, r).map_err(|e| e.to_string())?;
    let embedder = SeqEmbedder::new(params);
    let mut sum = 0.0;
    for t in 0..trees {
        let emb = embedder.embed(&ps, seed + t).map_err(|e| e.to_string())?;
        sum += tree_emd(&emb, &a, &b);
    }
    let mean = sum / trees as f64;
    println!(
        "tree EMD (points 0..{split} vs {split}..{}): {mean:.3} (mean of {trees} trees)",
        2 * split
    );
    if flags.contains_key("exact") {
        let exact = exact_emd(&ps, &a, &b);
        println!(
            "exact EMD (Hungarian): {exact:.3}; ratio {:.3}",
            mean / exact.max(1e-12)
        );
    }
    Ok(())
}

fn cmd_kmedian(flags: &Flags) -> Result<(), String> {
    let ps = load_points(flags)?;
    let k: usize = req(flags, "k")?;
    if k == 0 || k > ps.len() {
        return Err(format!("--k must be in 1..={}", ps.len()));
    }
    let trees: u64 = get(flags, "trees")?.unwrap_or(5);
    let seed: u64 = get(flags, "seed")?.unwrap_or(42);
    let r: usize =
        get(flags, "r")?.unwrap_or_else(|| treeemb::core::params::pipeline_r(ps.len(), ps.dim()));
    let params = HybridParams::for_dataset(&ps, r).map_err(|e| e.to_string())?;
    let embedder = SeqEmbedder::new(params);
    let mut best = (f64::INFINITY, Vec::new());
    for t in 0..trees {
        let emb = embedder.embed(&ps, seed + t).map_err(|e| e.to_string())?;
        let result = tree_kmedian(&emb, k);
        let euclid = kmedian_cost_euclid(&ps, &result.medians);
        if euclid < best.0 {
            best = (euclid, result.medians);
        }
    }
    println!(
        "{k}-median (best of {trees} trees): cost {:.3}, medians {:?}",
        best.0, best.1
    );
    Ok(())
}
