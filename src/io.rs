//! Plain-CSV I/O for point sets (the CLI's interchange format).
//!
//! Format: one point per line, coordinates separated by commas; blank
//! lines and lines starting with `#` are skipped. No quoting or
//! escaping — this is numeric data.

use std::fmt::Write as _;
use treeemb_geom::PointSet;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// The input contained no data rows.
    Empty,
    /// A row had a different number of columns than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        got: usize,
        /// Columns expected.
        expected: usize,
    },
    /// A cell failed to parse as a float.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Offending cell text.
        cell: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Empty => write!(f, "no data rows"),
            CsvError::RaggedRow {
                line,
                got,
                expected,
            } => {
                write!(f, "line {line}: {got} columns, expected {expected}")
            }
            CsvError::BadNumber { line, cell } => {
                write!(f, "line {line}: cannot parse {cell:?} as a number")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a CSV string into a point set.
pub fn points_from_csv(text: &str) -> Result<PointSet, CsvError> {
    let mut dim: Option<usize> = None;
    let mut data: Vec<f64> = Vec::new();
    let mut rows = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = 0usize;
        for cell in line.split(',') {
            let cell = cell.trim();
            let v: f64 = cell.parse().map_err(|_| CsvError::BadNumber {
                line: idx + 1,
                cell: cell.to_string(),
            })?;
            data.push(v);
            cols += 1;
        }
        match dim {
            None => dim = Some(cols),
            Some(d) if d != cols => {
                return Err(CsvError::RaggedRow {
                    line: idx + 1,
                    got: cols,
                    expected: d,
                })
            }
            _ => {}
        }
        rows += 1;
    }
    let dim = dim.ok_or(CsvError::Empty)?;
    let _ = rows;
    Ok(PointSet::from_flat(dim, data))
}

/// Renders a point set as CSV.
pub fn points_to_csv(ps: &PointSet) -> String {
    let mut s = String::new();
    for p in ps.iter() {
        for (j, x) in p.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{x}");
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.5], vec![-3.0, 4.0]]);
        let csv = points_to_csv(&ps);
        let back = points_from_csv(&csv).unwrap();
        assert_eq!(back, ps);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let ps = points_from_csv("# header\n1,2\n\n3,4\n").unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let err = points_from_csv("1,2\n3\n").unwrap_err();
        assert!(matches!(
            err,
            CsvError::RaggedRow {
                line: 2,
                got: 1,
                expected: 2
            }
        ));
    }

    #[test]
    fn bad_numbers_are_rejected() {
        let err = points_from_csv("1,zebra\n").unwrap_err();
        assert!(matches!(err, CsvError::BadNumber { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(points_from_csv("# nothing\n").unwrap_err(), CsvError::Empty);
    }
}
