//! # treeemb — Massively Parallel Tree Embeddings for High Dimensional Spaces
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! Ahanchi, Andoni, Hajiaghayi, Knittel & Zhong, *"Massively Parallel
//! Tree Embeddings for High Dimensional Spaces"* (SPAA 2023).
//!
//! ## Quick tour
//!
//! ```
//! use treeemb::geom::generators;
//! use treeemb::core::{seq::SeqEmbedder, params::HybridParams};
//!
//! // 128 integer points in [1024]^8.
//! let points = generators::uniform_cube(128, 8, 1024, 42);
//! // Hybrid partitioning with r = 2 buckets (paper Algorithm 1).
//! let params = HybridParams::for_dataset(&points, 2).unwrap();
//! let emb = SeqEmbedder::new(params).embed(&points, 7).expect("coverage");
//! // The tree metric dominates the Euclidean metric ...
//! let t = emb.tree_distance(0, 1);
//! let e = treeemb::geom::metrics::dist(points.point(0), points.point(1));
//! assert!(t >= e * (1.0 - 1e-9));
//! ```
//!
//! See the crate-level docs of each member for details:
//! [`geom`], [`mpc`], [`linalg`], [`fjlt`], [`partition`], [`hst`],
//! [`core`], [`apps`].

pub mod io;

/// The blessed one-import surface of the workspace.
///
/// Everything a typical embedding program needs — point-set generators,
/// the sequential embedder, the MPC pipeline with its builder-style
/// configuration, the simulated runtime, fault plans, and both error
/// types:
///
/// ```
/// use treeemb::prelude::*;
///
/// let points = generators::uniform_cube(64, 8, 1024, 42);
/// let cfg = PipelineConfig::builder().r(4).threads(2).build();
/// let report = pipeline::run(&points, &cfg).unwrap();
/// assert!(report.rounds > 0);
/// ```
pub mod prelude {
    pub use treeemb_core::params::HybridParams;
    pub use treeemb_core::pipeline::{self, PipelineBuilder, PipelineConfig, PipelineReport};
    pub use treeemb_core::{EmbedError, Embedding, SeqEmbedder};
    pub use treeemb_geom::{generators, metrics, PointSet};
    pub use treeemb_mpc::fault::FaultEvent;
    pub use treeemb_mpc::{
        from_env, CheckpointPolicy, Dist, FaultKind, FaultPlan, FaultRates, FaultSpec, MpcConfig,
        MpcError, Runtime, RuntimeBuilder,
    };
}

pub use treeemb_apps as apps;
pub use treeemb_core as core;
pub use treeemb_fjlt as fjlt;
pub use treeemb_geom as geom;
pub use treeemb_hst as hst;
pub use treeemb_linalg as linalg;
pub use treeemb_mpc as mpc;
pub use treeemb_partition as partition;
