//! # treeemb — Massively Parallel Tree Embeddings for High Dimensional Spaces
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! Ahanchi, Andoni, Hajiaghayi, Knittel & Zhong, *"Massively Parallel
//! Tree Embeddings for High Dimensional Spaces"* (SPAA 2023).
//!
//! ## Quick tour
//!
//! ```
//! use treeemb::geom::generators;
//! use treeemb::core::{seq::SeqEmbedder, params::HybridParams};
//!
//! // 128 integer points in [1024]^8.
//! let points = generators::uniform_cube(128, 8, 1024, 42);
//! // Hybrid partitioning with r = 2 buckets (paper Algorithm 1).
//! let params = HybridParams::for_dataset(&points, 2).unwrap();
//! let emb = SeqEmbedder::new(params).embed(&points, 7).expect("coverage");
//! // The tree metric dominates the Euclidean metric ...
//! let t = emb.tree_distance(0, 1);
//! let e = treeemb::geom::metrics::dist(points.point(0), points.point(1));
//! assert!(t >= e * (1.0 - 1e-9));
//! ```
//!
//! See the crate-level docs of each member for details:
//! [`geom`], [`mpc`], [`linalg`], [`fjlt`], [`partition`], [`hst`],
//! [`core`], [`apps`].

pub mod io;

pub use treeemb_apps as apps;
pub use treeemb_core as core;
pub use treeemb_fjlt as fjlt;
pub use treeemb_geom as geom;
pub use treeemb_hst as hst;
pub use treeemb_linalg as linalg;
pub use treeemb_mpc as mpc;
pub use treeemb_partition as partition;
